//! Design-rule checking.
//!
//! Cloud-FPGA providers screen tenant bitstreams for circuits that can be
//! abused for power attacks; the canonical rule is the **combinational-loop
//! check** (Vivado rule `LUTLP-1`), which rejects ring oscillators. The
//! DeepStrike paper's §III-C observation is that inserting transparent
//! latches (`LDCE`) into the feedback path removes the *combinational* loop
//! — the checker sees a latch, classifies the path as sequential, and passes
//! the design — even though the latch is held transparent at run time and
//! the loop still oscillates.
//!
//! This module reproduces that checker behaviour faithfully: loops made only
//! of combinational primitives are `Error`s; loops broken by latches are
//! reported as `Info` (latch-in-loop advisory, mirroring Vivado's
//! latch-related methodology warnings) and do not reject the design.

use std::collections::HashMap;

use crate::netlist::{CellId, Netlist};
use crate::primitive::PrimitiveKind;

/// Severity of a rule violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but deployable.
    Warning,
    /// Design is rejected.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Identifier of the rule that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// `LUTLP-1`: combinational loop through LUTs/carry logic.
    CombinationalLoop,
    /// Latch present inside a feedback loop (advisory; this is the pattern
    /// DeepStrike exploits, but vendors ship it as a warning at most).
    LatchInLoop,
    /// Latch used at all (methodology advisory).
    LatchUsage,
    /// Cell input left unconnected.
    DanglingInput,
    /// Net has sinks but no driver.
    UndrivenNet,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rule::CombinationalLoop => write!(f, "LUTLP-1"),
            Rule::LatchInLoop => write!(f, "DSTRK-LATCHLOOP"),
            Rule::LatchUsage => write!(f, "REQP-LATCH"),
            Rule::DanglingInput => write!(f, "NSTD-DANGLE"),
            Rule::UndrivenNet => write!(f, "NSTD-UNDRIVEN"),
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// The cells implicated (loop members, dangling cell, …).
    pub cells: Vec<CellId>,
}

/// Result of a DRC run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrcReport {
    /// All violations found, errors first.
    pub violations: Vec<Violation>,
}

impl DrcReport {
    /// Number of `Error`-severity violations.
    pub fn error_count(&self) -> usize {
        self.violations.iter().filter(|v| v.severity == Severity::Error).count()
    }

    /// Whether the design would be accepted for deployment (no errors).
    pub fn is_deployable(&self) -> bool {
        self.error_count() == 0
    }

    /// Violations of one specific rule.
    pub fn of_rule(&self, rule: Rule) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.rule == rule)
    }
}

impl std::fmt::Display for DrcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "drc: {} violation(s), {} error(s)",
            self.violations.len(),
            self.error_count()
        )?;
        for v in &self.violations {
            writeln!(f, "  [{}] {}: {}", v.severity, v.rule, v.message)?;
        }
        Ok(())
    }
}

/// Provider screening policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrcPolicy {
    /// Escalate latch-broken feedback loops from advisories to errors —
    /// the FPGADefender-style self-oscillator scan the paper (§III-C,
    /// refs [26][27]) names as the countermeasure that would catch its
    /// latch-based striker.
    pub ban_latch_loops: bool,
}

impl DrcPolicy {
    /// The state of practice the paper attacks: only combinational loops
    /// are rejected.
    pub fn standard() -> Self {
        DrcPolicy { ban_latch_loops: false }
    }

    /// A hardened provider that also scans for latch-broken oscillators.
    pub fn strict() -> Self {
        DrcPolicy { ban_latch_loops: true }
    }
}

/// Runs all design rules against a netlist under the standard policy.
///
/// # Example
///
/// ```
/// use fpga_fabric::netlist::Netlist;
/// use fpga_fabric::primitive::PrimitiveKind;
/// use fpga_fabric::drc::check;
///
/// // LUT -> LDCE -> back to LUT: loop is broken by the latch, design passes.
/// let mut n = Netlist::new("latched");
/// let lut = n.add_lut1_inverter("inv");
/// let latch = n.add_cell("l", PrimitiveKind::Ldce, None);
/// n.connect(n.output_of(lut), n.input_of(latch, 0)).unwrap();
/// n.connect(n.output_of(latch), n.input_of(lut, 0)).unwrap();
/// assert!(check(&n).is_deployable());
/// ```
pub fn check(netlist: &Netlist) -> DrcReport {
    check_with(netlist, DrcPolicy::standard())
}

/// Runs all design rules under an explicit policy.
pub fn check_with(netlist: &Netlist, policy: DrcPolicy) -> DrcReport {
    let mut violations = Vec::new();
    check_combinational_loops(netlist, &mut violations);
    check_latch_loops(netlist, policy, &mut violations);
    check_latch_usage(netlist, &mut violations);
    check_dangling(netlist, &mut violations);
    violations.sort_by_key(|v| std::cmp::Reverse(v.severity));
    DrcReport { violations }
}

/// Finds strongly connected components of the cell graph restricted to
/// combinational cells; any non-trivial SCC (or combinational self-loop) is
/// a `LUTLP-1` error.
fn check_combinational_loops(netlist: &Netlist, out: &mut Vec<Violation>) {
    let comb: Vec<CellId> =
        netlist.cells().filter(|(_, c)| !c.kind.is_sequential()).map(|(id, _)| id).collect();
    let sccs = sccs_over(netlist, &comb);
    for scc in sccs {
        let names: Vec<String> = scc.iter().map(|id| netlist.cell(*id).name.clone()).collect();
        out.push(Violation {
            rule: Rule::CombinationalLoop,
            severity: Severity::Error,
            message: format!(
                "combinational loop through {} cell(s): {}",
                scc.len(),
                names.join(" -> ")
            ),
            cells: scc,
        });
    }
}

/// Finds feedback loops that *do* pass through a latch. Under the standard
/// policy they are advisories (the state of practice the paper attacks);
/// under [`DrcPolicy::strict`] they are errors.
fn check_latch_loops(netlist: &Netlist, policy: DrcPolicy, out: &mut Vec<Violation>) {
    // Loops in the full graph (sequential cells included), restricted to
    // components containing at least one latch and no flip-flop-free pure
    // combinational cycle (those are already errors).
    let all: Vec<CellId> = netlist.cells().map(|(id, _)| id).collect();
    let sccs = sccs_over(netlist, &all);
    for scc in sccs {
        let has_latch = scc.iter().any(|id| netlist.cell(*id).kind == PrimitiveKind::Ldce);
        let all_comb_or_latch = scc.iter().all(|id| {
            let k = netlist.cell(*id).kind;
            !k.is_sequential() || k == PrimitiveKind::Ldce
        });
        if has_latch && all_comb_or_latch {
            out.push(Violation {
                rule: Rule::LatchInLoop,
                severity: if policy.ban_latch_loops { Severity::Error } else { Severity::Info },
                message: format!(
                    "feedback loop of {} cell(s) is broken only by transparent latches; \
                     it may self-oscillate if the gates are held open",
                    scc.len()
                ),
                cells: scc,
            });
        }
    }
}

fn check_latch_usage(netlist: &Netlist, out: &mut Vec<Violation>) {
    let latches: Vec<CellId> =
        netlist.cells().filter(|(_, c)| c.kind == PrimitiveKind::Ldce).map(|(id, _)| id).collect();
    if !latches.is_empty() {
        out.push(Violation {
            rule: Rule::LatchUsage,
            severity: Severity::Info,
            message: format!("{} latch(es) instantiated", latches.len()),
            cells: latches,
        });
    }
}

fn check_dangling(netlist: &Netlist, out: &mut Vec<Violation>) {
    for (id, cell) in netlist.cells() {
        let connected = cell.input_nets().count();
        // LUTs routinely leave upper inputs unused; only flag fully
        // unconnected cells, which indicate a broken generator.
        if connected == 0 && cell.kind.input_count() > 0 {
            out.push(Violation {
                rule: Rule::DanglingInput,
                severity: Severity::Warning,
                message: format!("cell {} has no connected inputs", cell.name),
                cells: vec![id],
            });
        }
    }
}

/// Tarjan SCC over the cell graph induced by `members`. Returns only
/// non-trivial SCCs (size > 1, or a self-loop).
fn sccs_over(netlist: &Netlist, members: &[CellId]) -> Vec<Vec<CellId>> {
    let index_of: HashMap<CellId, usize> =
        members.iter().enumerate().map(|(i, id)| (*id, i)).collect();
    let n = members.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for (a, b) in netlist.cell_edges() {
        if let (Some(&ia), Some(&ib)) = (index_of.get(&a), index_of.get(&b)) {
            if ia == ib {
                self_loop[ia] = true;
            } else {
                adj[ia].push(ib);
            }
        }
    }

    // Iterative Tarjan.
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<Vec<CellId>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: start, edge: 0 }];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(members[w]);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 || self_loop[index_of[&comp[0]]] {
                        result.push(comp);
                    }
                }
                let low_v = low[v];
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.v] = low[parent.v].min(low_v);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn ring_oscillator(stages: usize) -> Netlist {
        let mut n = Netlist::new("ro");
        let cells: Vec<_> = (0..stages).map(|i| n.add_lut1_inverter(&format!("inv{i}"))).collect();
        for i in 0..stages {
            let from = cells[i];
            let to = cells[(i + 1) % stages];
            n.connect(n.output_of(from), n.input_of(to, 0)).unwrap();
        }
        n
    }

    fn latched_loop() -> Netlist {
        // LUT6_2 dual inverter feeding two LDCEs, each feeding back: the
        // striker cell topology from the paper's Fig. 2.
        let mut n = Netlist::new("striker_cell");
        let lut = n.add_dual_inverter("lut");
        let l0 = n.add_cell("ldce0", PrimitiveKind::Ldce, None);
        let l1 = n.add_cell("ldce1", PrimitiveKind::Ldce, None);
        n.connect(n.output_pin(lut, 0), n.input_of(l0, 0)).unwrap(); // O6 -> D
        n.connect(n.output_pin(lut, 1), n.input_of(l1, 0)).unwrap(); // O5 -> D
        n.connect(n.output_of(l0), n.input_of(lut, 1)).unwrap(); // Q -> I1
        n.connect(n.output_of(l1), n.input_of(lut, 0)).unwrap(); // Q -> I0
        n
    }

    #[test]
    fn ring_oscillator_fails_lutlp1() {
        for stages in [1usize, 2, 3, 5] {
            let n = ring_oscillator(stages);
            let report = check(&n);
            assert!(!report.is_deployable(), "{stages}-stage RO must be rejected");
            let v = report.of_rule(Rule::CombinationalLoop).next().unwrap();
            assert_eq!(v.severity, Severity::Error);
            assert_eq!(v.cells.len(), stages);
        }
    }

    #[test]
    fn single_lut_self_loop_fails() {
        let mut n = Netlist::new("self");
        let a = n.add_lut1_inverter("a");
        n.connect(n.output_of(a), n.input_of(a, 0)).unwrap();
        assert!(!check(&n).is_deployable());
    }

    #[test]
    fn latch_based_striker_cell_passes_drc() {
        let n = latched_loop();
        let report = check(&n);
        assert!(report.is_deployable(), "latch loop must pass: {report}");
        // ...but the advisory must notice the oscillation-capable loop.
        assert!(report.of_rule(Rule::LatchInLoop).next().is_some());
        assert!(report.of_rule(Rule::LatchUsage).next().is_some());
    }

    #[test]
    fn strict_policy_catches_the_latch_loop() {
        let n = latched_loop();
        let standard = check_with(&n, DrcPolicy::standard());
        assert!(standard.is_deployable());
        let strict = check_with(&n, DrcPolicy::strict());
        assert!(!strict.is_deployable(), "hardened provider must reject: {strict}");
        let v = strict.of_rule(Rule::LatchInLoop).next().unwrap();
        assert_eq!(v.severity, Severity::Error);
        // A plain FF pipeline is unaffected by the strict policy.
        let mut ff = Netlist::new("pipe");
        let lut = ff.add_lut1_inverter("l");
        let reg = ff.add_cell("r", PrimitiveKind::Fdre, None);
        ff.connect(ff.output_of(lut), ff.input_of(reg, 0)).unwrap();
        ff.connect(ff.output_of(reg), ff.input_of(lut, 0)).unwrap();
        assert!(check_with(&ff, DrcPolicy::strict()).is_deployable());
    }

    #[test]
    fn flip_flop_pipeline_loop_is_fine_and_not_latch_flagged() {
        let mut n = Netlist::new("counter");
        let lut = n.add_lut1_inverter("inc");
        let ff = n.add_cell("ff", PrimitiveKind::Fdre, None);
        n.connect(n.output_of(lut), n.input_of(ff, 0)).unwrap();
        n.connect(n.output_of(ff), n.input_of(lut, 0)).unwrap();
        let report = check(&n);
        assert!(report.is_deployable());
        assert!(report.of_rule(Rule::LatchInLoop).next().is_none());
    }

    #[test]
    fn acyclic_design_has_no_loop_violations() {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_lut1_inverter("l0");
        for i in 1..20 {
            let next = n.add_lut1_inverter(&format!("l{i}"));
            n.connect(n.output_of(prev), n.input_of(next, 0)).unwrap();
            prev = next;
        }
        let report = check(&n);
        assert!(report.of_rule(Rule::CombinationalLoop).next().is_none());
        assert!(report.is_deployable());
    }

    #[test]
    fn two_disjoint_ros_produce_two_violations() {
        let mut n = ring_oscillator(3);
        let a = n.add_lut1_inverter("x0");
        let b = n.add_lut1_inverter("x1");
        n.connect(n.output_of(a), n.input_of(b, 0)).unwrap();
        n.connect(n.output_of(b), n.input_of(a, 0)).unwrap();
        let report = check(&n);
        assert_eq!(report.of_rule(Rule::CombinationalLoop).count(), 2);
    }

    #[test]
    fn dangling_cells_warn_but_deploy() {
        let mut n = Netlist::new("d");
        n.add_lut1_inverter("floating");
        let report = check(&n);
        assert!(report.is_deployable());
        assert_eq!(report.of_rule(Rule::DanglingInput).count(), 1);
    }

    #[test]
    fn report_display_mentions_rule_ids() {
        let n = ring_oscillator(2);
        let text = check(&n).to_string();
        assert!(text.contains("LUTLP-1"));
        assert!(text.contains("error"));
    }
}
