//! Behavioural models of the fabric primitives used by the DeepStrike
//! circuits.
//!
//! The power striker is built from `LUT6_2` + two `LDCE` latches (paper
//! Fig. 2); the TDC delay line from LUT buffers and a `CARRY4` chain sampled
//! by `FDRE` flip-flops (paper Fig. 1a). The models here are functional
//! (combinational evaluation, latch/flip-flop state) plus a nominal
//! propagation delay that the PDN crate scales with voltage.

/// The set of primitive kinds known to the fabric model.
///
/// The `is_sequential` / `breaks_combinational_path` distinction is what the
/// design-rule checker uses to decide whether a feedback cycle is a banned
/// combinational loop: latches and flip-flops break the combinational path,
/// LUTs and carry muxes do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PrimitiveKind {
    /// Six-input look-up table with a single output (`O6`).
    Lut6,
    /// Six-input look-up table in dual-output mode (`O6` and `O5`).
    Lut6_2,
    /// Transparent low-latch with gate enable and asynchronous clear.
    Ldce,
    /// D flip-flop with clock enable and synchronous reset.
    Fdre,
    /// Four-bit carry chain element (`MUXCY`/`XORCY` pairs).
    Carry4,
    /// DSP48E1-style arithmetic slice (behavioural model lives in `accel`).
    Dsp48,
    /// 36 Kb block RAM.
    Bram36,
    /// Top-level input buffer.
    Ibuf,
    /// Top-level output buffer.
    Obuf,
    /// Global clock buffer.
    Bufg,
}

impl PrimitiveKind {
    /// Whether this primitive stores state (and therefore terminates a
    /// combinational path for loop analysis).
    ///
    /// Note the subtlety the paper exploits: an `LDCE` *is* sequential for
    /// DRC purposes — a LUT→LDCE→LUT cycle is not flagged as a combinational
    /// loop — yet while its gate is held open it behaves transparently and
    /// the loop oscillates. That is exactly why the latch-based striker
    /// passes DRC while still self-oscillating.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            PrimitiveKind::Ldce
                | PrimitiveKind::Fdre
                | PrimitiveKind::Dsp48
                | PrimitiveKind::Bram36
        )
    }

    /// Nominal propagation delay through the primitive at nominal voltage,
    /// in picoseconds. Values are in the ballpark of 7-series data sheets.
    pub fn nominal_delay_ps(self) -> f64 {
        match self {
            PrimitiveKind::Lut6 | PrimitiveKind::Lut6_2 => 124.0,
            PrimitiveKind::Ldce => 280.0,
            PrimitiveKind::Fdre => 350.0,
            PrimitiveKind::Carry4 => 55.0,
            PrimitiveKind::Dsp48 => 2500.0,
            PrimitiveKind::Bram36 => 1800.0,
            PrimitiveKind::Ibuf | PrimitiveKind::Obuf => 600.0,
            PrimitiveKind::Bufg => 900.0,
        }
    }

    /// Number of logic inputs the primitive exposes in this model.
    pub fn input_count(self) -> usize {
        match self {
            PrimitiveKind::Lut6 | PrimitiveKind::Lut6_2 => 6,
            PrimitiveKind::Ldce => 4,   // D, G, GE, CLR
            PrimitiveKind::Fdre => 4,   // D, C, CE, R
            PrimitiveKind::Carry4 => 9, // CI + 4×S + 4×DI
            PrimitiveKind::Dsp48 => 3,  // A, B, D buses (abstracted)
            PrimitiveKind::Bram36 => 3,
            PrimitiveKind::Ibuf => 1,
            PrimitiveKind::Obuf => 1,
            PrimitiveKind::Bufg => 1,
        }
    }

    /// Number of outputs the primitive exposes in this model.
    pub fn output_count(self) -> usize {
        match self {
            PrimitiveKind::Lut6_2 => 2, // O6, O5
            PrimitiveKind::Carry4 => 8, // 4×CO + 4×O
            PrimitiveKind::Dsp48 => 1,
            _ => 1,
        }
    }
}

/// A six-input LUT evaluated from its 64-bit `INIT` vector.
///
/// # Example
///
/// ```
/// use fpga_fabric::primitive::Lut6;
/// let and6 = Lut6::new(0x8000_0000_0000_0000);
/// assert!(and6.eval([true; 6]));
/// assert!(!and6.eval([true, true, true, true, true, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lut6 {
    init: u64,
}

impl Lut6 {
    /// Creates a LUT from its `INIT` configuration word.
    pub fn new(init: u64) -> Self {
        Lut6 { init }
    }

    /// An inverter on `I0` (ignores the other inputs), as used by ring
    /// oscillators and by the striker cell's feedback path.
    pub fn inverter() -> Self {
        // Output is 1 whenever bit I0 of the address is 0.
        let mut init = 0u64;
        for addr in 0..64u64 {
            if addr & 1 == 0 {
                init |= 1 << addr;
            }
        }
        Lut6 { init }
    }

    /// A buffer on `I0`.
    pub fn buffer() -> Self {
        let mut init = 0u64;
        for addr in 0..64u64 {
            if addr & 1 == 1 {
                init |= 1 << addr;
            }
        }
        Lut6 { init }
    }

    /// The raw `INIT` word.
    pub fn init(&self) -> u64 {
        self.init
    }

    /// Evaluates the LUT for the input vector `[I0, .., I5]`.
    pub fn eval(&self, inputs: [bool; 6]) -> bool {
        let mut addr = 0usize;
        for (i, bit) in inputs.iter().enumerate() {
            if *bit {
                addr |= 1 << i;
            }
        }
        (self.init >> addr) & 1 == 1
    }
}

/// A dual-output LUT (`LUT6_2`): `O6` is the full six-input function, `O5`
/// is the five-input function stored in `INIT[31:0]`.
///
/// DeepStrike configures one `LUT6_2` as **two parallel inverters** so a
/// single LUT feeds two oscillating latch loops (paper Fig. 2), halving the
/// LUT cost per loop relative to an RO.
///
/// # Example
///
/// ```
/// use fpga_fabric::primitive::Lut6_2;
/// let cell = Lut6_2::dual_inverter();
/// // O5 inverts I0, O6 inverts I1 (with I5 tied high for dual-output mode).
/// let (o6, o5) = cell.eval([false, false, false, false, false, true]);
/// assert!(o6 && o5);
/// let (o6, o5) = cell.eval([true, true, false, false, false, true]);
/// assert!(!o6 && !o5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lut6_2 {
    init: u64,
}

impl Lut6_2 {
    /// Creates a dual-output LUT from its `INIT` word.
    pub fn new(init: u64) -> Self {
        Lut6_2 { init }
    }

    /// Two parallel inverters: `O5 = !I0` (lower half), `O6 = !I1` when
    /// `I5 = 1` (dual-output convention of 7-series LUTs).
    pub fn dual_inverter() -> Self {
        let mut init = 0u64;
        for addr in 0..64u64 {
            let i0 = addr & 1;
            let i1 = (addr >> 1) & 1;
            if addr < 32 {
                // INIT[31:0] drives O5 = !I0.
                if i0 == 0 {
                    init |= 1 << addr;
                }
            } else {
                // INIT[63:32] drives O6 (when I5 = 1) = !I1.
                if i1 == 0 {
                    init |= 1 << addr;
                }
            }
        }
        Lut6_2 { init }
    }

    /// The raw `INIT` word.
    pub fn init(&self) -> u64 {
        self.init
    }

    /// Evaluates `(O6, O5)` for inputs `[I0, .., I5]`.
    ///
    /// `O5` only depends on `I0..I4` (address into the low 32 bits); `O6`
    /// reads the full table.
    pub fn eval(&self, inputs: [bool; 6]) -> (bool, bool) {
        let mut addr = 0usize;
        for (i, bit) in inputs.iter().enumerate() {
            if *bit {
                addr |= 1 << i;
            }
        }
        let o6 = (self.init >> addr) & 1 == 1;
        let addr5 = addr & 0x1f;
        let o5 = (self.init >> addr5) & 1 == 1;
        (o6, o5)
    }
}

/// Transparent low-latch with gate enable and asynchronous clear (`LDCE`).
///
/// Truth table (per the Xilinx libraries guide):
///
/// | CLR | GE | G | D | Q          |
/// |-----|----|---|---|------------|
/// | 1   | x  | x | x | 0          |
/// | 0   | 0  | x | x | (no change)|
/// | 0   | 1  | 1 | d | d          |
/// | 0   | 1  | 0 | x | (no change)|
///
/// # Example
///
/// ```
/// use fpga_fabric::primitive::Ldce;
/// let mut latch = Ldce::new();
/// latch.update(true, true, true, false);  // transparent, captures 1
/// assert!(latch.q());
/// latch.update(false, false, true, false); // gate closed, holds
/// assert!(latch.q());
/// latch.update(false, true, true, true);   // async clear wins
/// assert!(!latch.q());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ldce {
    q: bool,
}

impl Ldce {
    /// A latch initialised to 0.
    pub fn new() -> Self {
        Ldce { q: false }
    }

    /// Current output.
    pub fn q(&self) -> bool {
        self.q
    }

    /// Applies one evaluation step and returns the (possibly new) output.
    pub fn update(&mut self, d: bool, g: bool, ge: bool, clr: bool) -> bool {
        if clr {
            self.q = false;
        } else if ge && g {
            self.q = d;
        }
        self.q
    }

    /// Whether the latch is currently transparent for the given controls.
    pub fn is_transparent(g: bool, ge: bool, clr: bool) -> bool {
        !clr && g && ge
    }
}

/// D flip-flop with clock enable and synchronous reset (`FDRE`).
///
/// `tick` models one rising clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fdre {
    q: bool,
}

impl Fdre {
    /// A flip-flop initialised to 0.
    pub fn new() -> Self {
        Fdre { q: false }
    }

    /// Current output.
    pub fn q(&self) -> bool {
        self.q
    }

    /// Applies a rising clock edge.
    pub fn tick(&mut self, d: bool, ce: bool, r: bool) -> bool {
        if r {
            self.q = false;
        } else if ce {
            self.q = d;
        }
        self.q
    }
}

/// One four-bit carry-chain element (`CARRY4`), the building block of the
/// TDC's `DL_CARRY` delay line.
///
/// For each of the four stages: `CO[i] = S[i] ? CI_chain : DI[i]` and
/// `O[i] = S[i] ^ CI_chain`, where `CI_chain` is the carry entering stage
/// `i`. In TDC usage all `S` inputs are tied high so the carry input ripples
/// through all four stages, each adding ~`CARRY4` delay / 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Carry4;

impl Carry4 {
    /// Evaluates the chain: returns `(co, o)` arrays given the carry-in,
    /// select bits and data inputs.
    pub fn eval(ci: bool, s: [bool; 4], di: [bool; 4]) -> ([bool; 4], [bool; 4]) {
        let mut co = [false; 4];
        let mut o = [false; 4];
        let mut carry = ci;
        for i in 0..4 {
            o[i] = s[i] ^ carry;
            carry = if s[i] { carry } else { di[i] };
            co[i] = carry;
        }
        (co, o)
    }

    /// Per-stage propagation delay at nominal voltage, in picoseconds.
    ///
    /// This is the TDC's resolution quantum: a 7-series `CARRY4` propagates
    /// carry-in to carry-out in roughly 55 ps, i.e. ~14 ps per stage.
    pub fn per_stage_delay_ps() -> f64 {
        PrimitiveKind::Carry4.nominal_delay_ps() / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut6_inverter_and_buffer() {
        let inv = Lut6::inverter();
        let buf = Lut6::buffer();
        for rest in 0..32u8 {
            let mk = |i0: bool| {
                let mut v = [false; 6];
                v[0] = i0;
                for b in 0..5 {
                    v[b + 1] = (rest >> b) & 1 == 1;
                }
                v
            };
            assert!(inv.eval(mk(false)));
            assert!(!inv.eval(mk(true)));
            assert!(!buf.eval(mk(false)));
            assert!(buf.eval(mk(true)));
        }
    }

    #[test]
    fn lut6_2_dual_inverter_is_two_independent_inverters() {
        let cell = Lut6_2::dual_inverter();
        for i0 in [false, true] {
            for i1 in [false, true] {
                let (o6, o5) = cell.eval([i0, i1, false, false, false, true]);
                assert_eq!(o5, !i0, "O5 must invert I0");
                assert_eq!(o6, !i1, "O6 must invert I1");
            }
        }
    }

    #[test]
    fn ldce_truth_table() {
        let mut l = Ldce::new();
        // Gate enable low: hold.
        l.update(true, true, false, false);
        assert!(!l.q());
        // Transparent: follow D.
        l.update(true, true, true, false);
        assert!(l.q());
        l.update(false, true, true, false);
        assert!(!l.q());
        // Gate low: hold last value.
        l.update(true, true, true, false);
        l.update(false, false, true, false);
        assert!(l.q());
        // Async clear dominates.
        l.update(true, true, true, true);
        assert!(!l.q());
    }

    #[test]
    fn fdre_tick_semantics() {
        let mut ff = Fdre::new();
        ff.tick(true, false, false);
        assert!(!ff.q(), "ce gates capture");
        ff.tick(true, true, false);
        assert!(ff.q());
        ff.tick(true, true, true);
        assert!(!ff.q(), "sync reset wins");
    }

    #[test]
    fn carry4_ripples_carry_when_selected() {
        // All S high: CO[i] = CI for all stages (ripple), O[i] = !CI ^ ...
        let (co, o) = Carry4::eval(true, [true; 4], [false; 4]);
        assert_eq!(co, [true; 4]);
        assert_eq!(o, [false; 4], "S ^ CI = 1 ^ 1 = 0");
        let (co, _) = Carry4::eval(false, [true; 4], [false; 4]);
        assert_eq!(co, [false; 4]);
        // S low: CO[i] = DI[i].
        let (co, _) = Carry4::eval(true, [false; 4], [true, false, true, false]);
        assert_eq!(co, [true, false, true, false]);
    }

    #[test]
    fn sequential_classification_matches_drc_expectations() {
        assert!(PrimitiveKind::Ldce.is_sequential());
        assert!(PrimitiveKind::Fdre.is_sequential());
        assert!(!PrimitiveKind::Lut6.is_sequential());
        assert!(!PrimitiveKind::Lut6_2.is_sequential());
        assert!(!PrimitiveKind::Carry4.is_sequential());
    }

    #[test]
    fn delays_are_positive_and_ordered() {
        assert!(Carry4::per_stage_delay_ps() > 0.0);
        assert!(
            PrimitiveKind::Carry4.nominal_delay_ps() < PrimitiveKind::Lut6.nominal_delay_ps() * 4.0,
            "carry chain must be much faster than LUT routing, else the TDC has no resolution"
        );
    }
}
