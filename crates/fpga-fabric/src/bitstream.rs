//! Hypervisor view: combining tenant designs into one deployable image.
//!
//! In the paper's threat model "the hypervisor in the virtualized cloud-FPGA
//! will compile and combine applications of all the tenants …, generate an
//! unified bitstream and deploy it on one FPGA device" (§IV). Tenants do not
//! share I/O, BRAM or clocks — only the PDN. This module performs that
//! combination step with the provider-side checks: per-tenant DRC, region
//! assignment and whole-device capacity.

use crate::device::Device;
use crate::drc::{self, DrcReport};
use crate::error::{FabricError, Result};
use crate::floorplan::{Floorplan, Region};
use crate::netlist::{Netlist, ResourceUsage};

/// One tenant's deployment request: a netlist and a desired region.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDesign {
    /// Tenant name (unique within a deployment).
    pub name: String,
    /// The tenant's netlist.
    pub netlist: Netlist,
    /// Region the tenant is assigned on the device grid.
    pub region: Region,
}

impl TenantDesign {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, netlist: Netlist, region: Region) -> Self {
        TenantDesign { name: name.into(), netlist, region }
    }
}

/// The result of a successful combine: one merged netlist plus floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    /// Device the image targets.
    device_name: String,
    /// Merged netlist with tenant-prefixed instance names.
    merged: Netlist,
    /// Floorplan with one slot per tenant.
    floorplan: Floorplan,
    /// Per-tenant DRC reports (all deployable).
    reports: Vec<(String, DrcReport)>,
}

impl Bitstream {
    /// The merged netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.merged
    }

    /// The tenant floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Target device name.
    pub fn device_name(&self) -> &str {
        &self.device_name
    }

    /// Per-tenant DRC reports recorded during combination.
    pub fn drc_reports(&self) -> &[(String, DrcReport)] {
        &self.reports
    }

    /// Total resource usage across tenants.
    pub fn total_usage(&self) -> ResourceUsage {
        self.merged.resource_usage()
    }
}

/// Combines tenant designs into one image, running provider-side checks.
///
/// # Errors
///
/// * [`FabricError::DrcRejected`] if any tenant fails DRC (e.g. contains a
///   ring oscillator);
/// * [`FabricError::RegionOverlap`] / [`FabricError::PlacementOverflow`] if
///   the floorplan cannot host the request;
/// * [`FabricError::PlacementOverflow`] if the union exceeds the device.
///
/// # Example
///
/// ```
/// use fpga_fabric::bitstream::{combine, TenantDesign};
/// use fpga_fabric::device::Device;
/// use fpga_fabric::floorplan::Region;
/// use fpga_fabric::netlist::Netlist;
///
/// let device = Device::testbench_mini();
/// let mut victim = Netlist::new("victim");
/// victim.add_lut1_inverter("logic");
/// let tenants = vec![TenantDesign::new("victim", victim, Region::new(0, 0, 10, 19))];
/// let image = combine(&device, tenants)?;
/// assert_eq!(image.floorplan().slots().len(), 1);
/// # Ok::<(), fpga_fabric::FabricError>(())
/// ```
pub fn combine(device: &Device, tenants: Vec<TenantDesign>) -> Result<Bitstream> {
    combine_with(device, tenants, drc::DrcPolicy::standard())
}

/// [`combine`] under an explicit screening policy (e.g.
/// [`drc::DrcPolicy::strict`] for providers that also scan latch loops).
///
/// # Errors
///
/// As [`combine`].
pub fn combine_with(
    device: &Device,
    tenants: Vec<TenantDesign>,
    policy: drc::DrcPolicy,
) -> Result<Bitstream> {
    let mut merged = Netlist::new(format!("{}_image", device.name()));
    let mut floorplan = Floorplan::new(device.grid().clone());
    let mut reports = Vec::new();

    for t in &tenants {
        let report = drc::check_with(&t.netlist, policy);
        if !report.is_deployable() {
            return Err(FabricError::DrcRejected { errors: report.error_count() });
        }
        floorplan.place(t.name.clone(), t.region, t.netlist.resource_usage())?;
        merged.merge(&t.netlist, &t.name);
        reports.push((t.name.clone(), report));
    }
    device.admit(&merged.resource_usage())?;
    Ok(Bitstream { device_name: device.name().to_string(), merged, floorplan, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::PrimitiveKind;

    fn benign(name: &str) -> Netlist {
        let mut n = Netlist::new(name);
        let lut = n.add_lut1_inverter("l");
        let ff = n.add_cell("ff", PrimitiveKind::Fdre, None);
        n.connect(n.output_of(lut), n.input_of(ff, 0)).unwrap();
        n
    }

    fn malicious_ro(name: &str) -> Netlist {
        let mut n = Netlist::new(name);
        let a = n.add_lut1_inverter("a");
        let b = n.add_lut1_inverter("b");
        n.connect(n.output_of(a), n.input_of(b, 0)).unwrap();
        n.connect(n.output_of(b), n.input_of(a, 0)).unwrap();
        n
    }

    #[test]
    fn combines_two_clean_tenants() {
        let device = Device::testbench_mini();
        let image = combine(
            &device,
            vec![
                TenantDesign::new("victim", benign("v"), Region::new(0, 0, 10, 19)),
                TenantDesign::new("attacker", benign("a"), Region::new(12, 0, 23, 19)),
            ],
        )
        .unwrap();
        assert_eq!(image.floorplan().slots().len(), 2);
        assert!(image.netlist().cell_by_name("victim/l").is_some());
        assert!(image.netlist().cell_by_name("attacker/l").is_some());
        assert_eq!(image.total_usage().luts, 2);
        assert_eq!(image.drc_reports().len(), 2);
    }

    #[test]
    fn ring_oscillator_tenant_is_rejected() {
        let device = Device::testbench_mini();
        let err = combine(
            &device,
            vec![TenantDesign::new("mal", malicious_ro("ro"), Region::new(0, 0, 10, 19))],
        )
        .unwrap_err();
        assert!(matches!(err, FabricError::DrcRejected { errors } if errors >= 1));
    }

    #[test]
    fn overlapping_tenants_rejected() {
        let device = Device::testbench_mini();
        let err = combine(
            &device,
            vec![
                TenantDesign::new("a", benign("a"), Region::new(0, 0, 12, 19)),
                TenantDesign::new("b", benign("b"), Region::new(12, 0, 23, 19)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, FabricError::RegionOverlap { .. }));
    }
}
