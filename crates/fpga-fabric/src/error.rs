use std::error::Error;
use std::fmt;

/// Errors raised by fabric-model operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabricError {
    /// A pin was already driven by another net.
    PinAlreadyDriven { cell: String, pin: String },
    /// A referenced cell, net or site does not exist.
    NotFound(String),
    /// A placement request does not fit the target region or device.
    PlacementOverflow { requested: usize, available: usize, what: String },
    /// Two regions overlap although they belong to different tenants.
    RegionOverlap { a: String, b: String },
    /// A clock request cannot be synthesised by the clock-management tile.
    UnsatisfiableClock { requested_mhz: f64, reason: String },
    /// The design failed a design-rule check that is configured as fatal.
    DrcRejected { errors: usize },
    /// Invalid argument to a fabric API.
    InvalidArgument(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::PinAlreadyDriven { cell, pin } => {
                write!(f, "pin {cell}/{pin} is already driven")
            }
            FabricError::NotFound(what) => write!(f, "{what} not found"),
            FabricError::PlacementOverflow { requested, available, what } => write!(
                f,
                "placement overflow: requested {requested} {what}, only {available} available"
            ),
            FabricError::RegionOverlap { a, b } => {
                write!(f, "tenant regions {a} and {b} overlap")
            }
            FabricError::UnsatisfiableClock { requested_mhz, reason } => {
                write!(f, "cannot synthesise {requested_mhz} MHz clock: {reason}")
            }
            FabricError::DrcRejected { errors } => {
                write!(f, "design rejected by drc with {errors} error(s)")
            }
            FabricError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for FabricError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = FabricError::NotFound("net n42".into());
        assert_eq!(e.to_string(), "net n42 not found");
        let e =
            FabricError::PlacementOverflow { requested: 10, available: 4, what: "DSP48E1".into() };
        assert!(e.to_string().contains("requested 10 DSP48E1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricError>();
    }
}
