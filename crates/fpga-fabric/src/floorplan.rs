//! Site grid, tenant regions and placement.
//!
//! Multi-tenant cloud FPGAs partition the die into rectangular regions, one
//! per tenant, with no routing between them. What the tenants *do* share is
//! the power distribution network; the PDN crate uses the region geometry
//! from this module to decide how strongly a current transient in one region
//! droops the voltage seen in another (the paper places the victim "far from
//! the attacker circuit to minimize the influence of temperature changes",
//! Fig. 6a).

use crate::error::{FabricError, Result};
use crate::netlist::ResourceUsage;

/// What a site in the fabric grid can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A logic slice: 4 LUTs, 8 storage elements, one carry chain.
    Slice,
    /// A DSP48 slice.
    Dsp,
    /// A 36 Kb block RAM.
    Bram,
}

/// A rectangular region of the site grid, inclusive of both corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Left column.
    pub x0: u32,
    /// Bottom row.
    pub y0: u32,
    /// Right column (inclusive).
    pub x1: u32,
    /// Top row (inclusive).
    pub y1: u32,
}

impl Region {
    /// Creates a region, normalising corner order.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        Region { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// Width in columns.
    pub fn width(&self) -> u32 {
        self.x1 - self.x0 + 1
    }

    /// Height in rows.
    pub fn height(&self) -> u32 {
        self.y1 - self.y0 + 1
    }

    /// Number of sites covered.
    pub fn area(&self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }

    /// Whether the two regions share any site.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Geometric centre, in site coordinates.
    pub fn center(&self) -> (f64, f64) {
        (f64::from(self.x0 + self.x1) / 2.0, f64::from(self.y0 + self.y1) / 2.0)
    }

    /// Euclidean centre-to-centre distance in site units.
    pub fn distance_to(&self, other: &Region) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

/// The fabric site grid of one device.
///
/// Columns follow the 7-series pattern: mostly slice columns with periodic
/// DSP and BRAM columns.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteGrid {
    cols: u32,
    rows: u32,
    dsp_period: u32,
    bram_period: u32,
}

impl SiteGrid {
    /// Creates a grid. `dsp_period`/`bram_period` say that every k-th column
    /// is a DSP (resp. BRAM) column; they must differ and be ≥ 2.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidArgument`] for degenerate geometry.
    pub fn new(cols: u32, rows: u32, dsp_period: u32, bram_period: u32) -> Result<Self> {
        if cols == 0 || rows == 0 {
            return Err(FabricError::InvalidArgument("grid must be non-empty".into()));
        }
        if dsp_period < 2 || bram_period < 2 || dsp_period == bram_period {
            return Err(FabricError::InvalidArgument(
                "column periods must be >= 2 and distinct".into(),
            ));
        }
        Ok(SiteGrid { cols, rows, dsp_period, bram_period })
    }

    /// Grid width in columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid height in rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Site kind at a column.
    pub fn column_kind(&self, x: u32) -> SiteKind {
        // BRAM takes precedence at coincident columns (cannot happen when
        // the periods are coprime, but be deterministic anyway).
        if x % self.bram_period == self.bram_period - 1 {
            SiteKind::Bram
        } else if x % self.dsp_period == self.dsp_period - 1 {
            SiteKind::Dsp
        } else {
            SiteKind::Slice
        }
    }

    /// Counts sites of each kind inside `region`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidArgument`] if the region exceeds the grid.
    pub fn capacity(&self, region: &Region) -> Result<RegionCapacity> {
        if region.x1 >= self.cols || region.y1 >= self.rows {
            return Err(FabricError::InvalidArgument(format!(
                "region ({},{})-({},{}) exceeds {}x{} grid",
                region.x0, region.y0, region.x1, region.y1, self.cols, self.rows
            )));
        }
        let mut cap = RegionCapacity::default();
        for x in region.x0..=region.x1 {
            let n = u64::from(region.height());
            match self.column_kind(x) {
                SiteKind::Slice => cap.slices += n as usize,
                // One DSP48 / RAMB36 spans several rows of fabric; 7-series
                // packs 2.5 slices of height per DSP, model as 1 per 2 rows.
                SiteKind::Dsp => cap.dsp += (n as usize).div_ceil(2),
                SiteKind::Bram => cap.bram += (n as usize).div_ceil(5),
            }
        }
        Ok(cap)
    }

    /// Whole-device capacity.
    pub fn total_capacity(&self) -> RegionCapacity {
        self.capacity(&Region::new(0, 0, self.cols - 1, self.rows - 1))
            .expect("full region is always in range")
    }
}

/// Sites available inside a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionCapacity {
    /// Logic slices.
    pub slices: usize,
    /// DSP48 slices.
    pub dsp: usize,
    /// Block RAMs.
    pub bram: usize,
}

impl RegionCapacity {
    /// Whether `usage` fits in this capacity.
    pub fn fits(&self, usage: &ResourceUsage) -> bool {
        usage.slices() <= self.slices && usage.dsp <= self.dsp && usage.bram <= self.bram
    }

    /// First resource that does not fit, with requested/available counts.
    pub fn first_overflow(&self, usage: &ResourceUsage) -> Option<(String, usize, usize)> {
        if usage.slices() > self.slices {
            return Some(("slices".into(), usage.slices(), self.slices));
        }
        if usage.dsp > self.dsp {
            return Some(("DSP48".into(), usage.dsp, self.dsp));
        }
        if usage.bram > self.bram {
            return Some(("BRAM36".into(), usage.bram, self.bram));
        }
        None
    }
}

/// A named tenant slot: a region plus the usage placed into it.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlot {
    /// Tenant name.
    pub name: String,
    /// Assigned region.
    pub region: Region,
    /// Resources the tenant's netlist consumes.
    pub usage: ResourceUsage,
}

/// A floorplan: grid plus non-overlapping tenant slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    grid: SiteGrid,
    slots: Vec<TenantSlot>,
}

impl Floorplan {
    /// Creates an empty floorplan over `grid`.
    pub fn new(grid: SiteGrid) -> Self {
        Floorplan { grid, slots: Vec::new() }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &SiteGrid {
        &self.grid
    }

    /// Currently placed tenants.
    pub fn slots(&self) -> &[TenantSlot] {
        &self.slots
    }

    /// Places a tenant into `region`.
    ///
    /// # Errors
    ///
    /// * [`FabricError::RegionOverlap`] if the region intersects an existing
    ///   tenant;
    /// * [`FabricError::PlacementOverflow`] if `usage` exceeds the region's
    ///   site capacity;
    /// * [`FabricError::InvalidArgument`] if the region exceeds the grid.
    pub fn place(
        &mut self,
        name: impl Into<String>,
        region: Region,
        usage: ResourceUsage,
    ) -> Result<()> {
        let name = name.into();
        for s in &self.slots {
            if s.region.overlaps(&region) {
                return Err(FabricError::RegionOverlap { a: s.name.clone(), b: name });
            }
        }
        let cap = self.grid.capacity(&region)?;
        if let Some((what, requested, available)) = cap.first_overflow(&usage) {
            return Err(FabricError::PlacementOverflow { requested, available, what });
        }
        self.slots.push(TenantSlot { name, region, usage });
        Ok(())
    }

    /// Looks up a tenant slot by name.
    pub fn slot(&self, name: &str) -> Option<&TenantSlot> {
        self.slots.iter().find(|s| s.name == name)
    }

    /// Centre-to-centre distance between two tenants, in site units.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NotFound`] if either tenant is absent.
    pub fn tenant_distance(&self, a: &str, b: &str) -> Result<f64> {
        let sa = self.slot(a).ok_or_else(|| FabricError::NotFound(format!("tenant {a}")))?;
        let sb = self.slot(b).ok_or_else(|| FabricError::NotFound(format!("tenant {b}")))?;
        Ok(sa.region.distance_to(&sb.region))
    }

    /// Normalised distance in `[0, 1]`: 0 = same spot, 1 = opposite corners.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NotFound`] if either tenant is absent.
    pub fn normalized_distance(&self, a: &str, b: &str) -> Result<f64> {
        let d = self.tenant_distance(a, b)?;
        let diag = (f64::from(self.grid.cols).powi(2) + f64::from(self.grid.rows).powi(2)).sqrt();
        Ok((d / diag).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SiteGrid {
        SiteGrid::new(100, 50, 12, 25).unwrap()
    }

    #[test]
    fn region_geometry() {
        let r = Region::new(10, 10, 4, 2);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (4, 2, 10, 10), "corners normalised");
        assert_eq!(r.width(), 7);
        assert_eq!(r.height(), 9);
        assert_eq!(r.area(), 63);
    }

    #[test]
    fn overlap_detection() {
        let a = Region::new(0, 0, 10, 10);
        let b = Region::new(10, 10, 20, 20);
        let c = Region::new(11, 0, 20, 9);
        assert!(a.overlaps(&b), "corner touch counts as overlap");
        assert!(!a.overlaps(&c));
        assert!(c.overlaps(&c));
    }

    #[test]
    fn grid_capacity_counts_columns() {
        let g = grid();
        let cap = g.capacity(&Region::new(0, 0, 99, 49)).unwrap();
        assert!(cap.slices > 0 && cap.dsp > 0 && cap.bram > 0);
        // Slice columns dominate.
        assert!(cap.slices > cap.dsp * 10);
    }

    #[test]
    fn degenerate_grids_rejected() {
        assert!(SiteGrid::new(0, 10, 12, 25).is_err());
        assert!(SiteGrid::new(10, 10, 12, 12).is_err());
        assert!(SiteGrid::new(10, 10, 1, 25).is_err());
    }

    #[test]
    fn placement_respects_overlap_and_capacity() {
        let mut fp = Floorplan::new(grid());
        let usage = ResourceUsage { luts: 100, ..Default::default() };
        fp.place("victim", Region::new(0, 0, 40, 49), usage).unwrap();
        // Overlapping second tenant is rejected.
        let err = fp.place("attacker", Region::new(40, 0, 99, 49), usage).unwrap_err();
        assert!(matches!(err, FabricError::RegionOverlap { .. }));
        // Non-overlapping fits.
        fp.place("attacker", Region::new(41, 0, 99, 49), usage).unwrap();
        assert_eq!(fp.slots().len(), 2);
    }

    #[test]
    fn oversized_usage_overflows() {
        let mut fp = Floorplan::new(grid());
        let huge = ResourceUsage { luts: 1_000_000, ..Default::default() };
        let err = fp.place("fat", Region::new(0, 0, 5, 5), huge).unwrap_err();
        assert!(matches!(err, FabricError::PlacementOverflow { .. }));
    }

    #[test]
    fn distances_are_symmetric_and_normalised() {
        let mut fp = Floorplan::new(grid());
        let usage = ResourceUsage::default();
        fp.place("a", Region::new(0, 0, 9, 9), usage).unwrap();
        fp.place("b", Region::new(90, 40, 99, 49), usage).unwrap();
        let d_ab = fp.tenant_distance("a", "b").unwrap();
        let d_ba = fp.tenant_distance("b", "a").unwrap();
        assert!((d_ab - d_ba).abs() < 1e-12);
        let nd = fp.normalized_distance("a", "b").unwrap();
        assert!(nd > 0.5 && nd <= 1.0, "far corners: {nd}");
        assert!(fp.tenant_distance("a", "zz").is_err());
    }
}
